"""Multi-bank TD-AM accelerator: the full-system deployment model.

One TD-AM array holds at most ``n_stages`` elements per row; real HDC
deployments (Fig. 8: D up to 10240) need many tiles, and a throughput-
oriented accelerator instantiates several physical *banks* so tiles
process in parallel rather than serially.  This module assembles the
existing pieces -- mapping, scheduler, energy, area, programming -- into
one :class:`AcceleratorModel` that answers the deployment questions:

- end-to-end latency/throughput of batched inference with B banks,
- total energy per query (encoder + banks + readout),
- silicon area of the bank array,
- model-load (programming) time,

plus a :func:`size_accelerator` helper that picks the smallest bank
count meeting a latency target.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.area import tdam_area
from repro.core.config import TDAMConfig
from repro.core.programming import ProgrammingModel
from repro.core.scheduler import OperationScheduler
from repro.hdc.mapping import (
    E_ENCODE_PER_DIMFEAT,
    T_READOUT_PER_CLASS,
    InferenceCost,
)


@dataclass(frozen=True)
class AcceleratorSpec:
    """Static description of one accelerator instance.

    Attributes:
        config: Per-bank TD-AM design point.
        n_banks: Physical banks (tiles processed concurrently).
        n_classes: Stored vectors per bank (rows).
        dimension: Hypervector dimension of the deployed model.
        n_features: Input feature count (encoder sizing).
    """

    config: TDAMConfig
    n_banks: int
    n_classes: int
    dimension: int
    n_features: int

    def __post_init__(self) -> None:
        if self.n_banks < 1:
            raise ValueError(f"n_banks must be >= 1, got {self.n_banks}")
        if self.n_classes < 1 or self.dimension < 1 or self.n_features < 1:
            raise ValueError("n_classes, dimension, n_features must be >= 1")

    @property
    def n_tiles(self) -> int:
        """Tiles covering the dimension."""
        return math.ceil(self.dimension / self.config.n_stages)

    @property
    def tile_rounds(self) -> int:
        """Serial rounds with ``n_banks`` tiles in flight per round."""
        return math.ceil(self.n_tiles / self.n_banks)


class AcceleratorModel:
    """Performance/energy/area evaluation of an accelerator instance."""

    def __init__(self, spec: AcceleratorSpec) -> None:
        self.spec = spec
        self.scheduler = OperationScheduler(spec.config)

    # ------------------------------------------------------------------
    # Performance
    # ------------------------------------------------------------------
    def query_latency_s(self) -> float:
        """One query: tile rounds stream through the banks."""
        schedule = self.scheduler.schedule()
        rounds = self.spec.tile_rounds
        if rounds == 1:
            stream = schedule.latency_s
        else:
            stream = (
                schedule.latency_s
                + (rounds - 1) * schedule.pipelined_interval_s
            )
        return stream + self.spec.n_classes * T_READOUT_PER_CLASS

    def throughput_qps(self) -> float:
        """Steady-state queries per second with full pipelining."""
        schedule = self.scheduler.schedule()
        per_query = self.spec.tile_rounds * schedule.pipelined_interval_s
        return 1.0 / per_query

    def query_cost(
        self,
        mismatch_fraction: float = 0.5,
        encoder: Optional[object] = None,
    ) -> InferenceCost:
        """Latency/energy of one query (same fields as TDAMInference).

        Args:
            mismatch_fraction: Expected mismatching-stage fraction.
            encoder: Optional in-fabric encoder (anything with an
                ``encode_cost(n_samples)`` returning a
                :class:`repro.core.mvm.MVMCost`, e.g.
                :class:`repro.hdc.encoder.QuantizedProjectionEncoder`).
                When given, the encode stage is costed from its
                bit-serial MVM model -- latency adds to the query path
                (encode precedes search) -- instead of the constant
                per-dimension-feature energy of [39].
        """
        if not 0.0 <= mismatch_fraction <= 1.0:
            raise ValueError(
                f"mismatch_fraction must be in [0, 1], got {mismatch_fraction}"
            )
        config = self.spec.config
        timing = self.scheduler.timing
        n_mis = int(round(mismatch_fraction * config.n_stages))
        per_chain = timing.search_cost(n_mis).energy_j
        search = self.spec.n_tiles * self.spec.n_classes * per_chain
        latency = self.query_latency_s()
        if encoder is not None:
            encode_cost = encoder.encode_cost(1)
            encode = encode_cost.energy_j
            latency += encode_cost.latency_s
        else:
            encode = (
                self.spec.dimension
                * self.spec.n_features
                * E_ENCODE_PER_DIMFEAT
            )
        return InferenceCost(
            latency_s=latency,
            energy_j=search + encode,
            tiles=self.spec.n_tiles,
            search_energy_j=search,
            encode_energy_j=encode,
        )

    # ------------------------------------------------------------------
    # Cost
    # ------------------------------------------------------------------
    def area_um2(self) -> float:
        """Total silicon area of the banks (um^2)."""
        per_bank = tdam_area(self.spec.config, self.spec.n_classes).total_um2
        return self.spec.n_banks * per_bank

    def model_load_time_s(self) -> float:
        """Programming the whole model image across the banks.

        Banks program in parallel (independent write drivers); each bank
        holds ``ceil(n_tiles / n_banks) * n_classes`` row images.
        """
        model = ProgrammingModel(self.spec.config)
        rows_per_bank = self.spec.tile_rounds * self.spec.n_classes
        return model.program_image(rows_per_bank).total_time_s

    def summary(self) -> "dict[str, float]":
        """The headline numbers as a dict (reports, tests)."""
        cost = self.query_cost()
        return {
            "n_banks": float(self.spec.n_banks),
            "tiles": float(self.spec.n_tiles),
            "latency_us": self.query_latency_s() * 1e6,
            "throughput_qps": self.throughput_qps(),
            "energy_nj": cost.energy_j * 1e9,
            "area_mm2": self.area_um2() * 1e-6,
            "model_load_ms": self.model_load_time_s() * 1e3,
        }


def size_accelerator(
    latency_target_s: float,
    dimension: int,
    n_classes: int,
    n_features: int,
    config: Optional[TDAMConfig] = None,
    max_banks: int = 128,
) -> AcceleratorModel:
    """Smallest bank count meeting a query-latency target.

    Raises:
        ValueError: if even ``max_banks`` banks cannot meet the target.
    """
    if latency_target_s <= 0:
        raise ValueError("latency_target_s must be positive")
    config = config or TDAMConfig(bits=2, n_stages=128, vdd=0.6)
    for n_banks in range(1, max_banks + 1):
        spec = AcceleratorSpec(
            config=config, n_banks=n_banks, n_classes=n_classes,
            dimension=dimension, n_features=n_features,
        )
        model = AcceleratorModel(spec)
        if model.query_latency_s() <= latency_target_s:
            return model
    raise ValueError(
        f"cannot reach {latency_target_s * 1e9:.1f} ns even with "
        f"{max_banks} banks (floor is the per-tile schedule plus readout)"
    )
