"""Crossbar-style similarity-search baselines (paper Sec. II-B).

Two designs the paper positions itself against:

- :class:`MultiBitFeCAMCrossbar` -- the 1-FeFET crossbar multi-bit CAM of
  Yin et al. (Adv. Intell. Syst. 2023, [25]): each cell's mismatch
  current is summed on an analog match line, so the Hamming distance is
  *quantitative* but sensed in the current domain.  The model includes
  the two costs the paper criticizes: static current during the entire
  evaluation window, and an ADC whose energy grows with the required
  resolution (log2 of the distance range).
- :class:`CosineCrossbarAM` -- a COSIME-like associative memory ([12]):
  a crossbar MAC plus winner-take-all.  It identifies the best row by
  cosine similarity but does not output the similarity value (the
  capability gap the paper highlights for learning algorithms that need
  exact similarities).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.baselines.base import BaselineDesign, SCType

MULTIBIT_FECAM_DESIGN = BaselineDesign(
    name="AIS'23 1FeFET CAM",
    reference="[25]",
    signal_domain="Current",
    device="FeFET",
    cell_size="1FeFET",
    sc_type=SCType.HAMMING_QUANTITATIVE,
    energy_per_bit_fj=0.50,
    technology_nm=45,
    quantitative=True,
    multibit=True,
    notes="Current-domain sensing; ADC cost excluded from the published number.",
)

COSIME_DESIGN = BaselineDesign(
    name="COSIME",
    reference="[12]",
    signal_domain="Current",
    device="FeFET",
    cell_size="crossbar+WTA",
    sc_type=SCType.MAC_COSINE_QUANTITATIVE,
    energy_per_bit_fj=0.30,
    technology_nm=45,
    quantitative=False,  # winner only; no similarity value output
    multibit=True,
    notes="Outputs the argmax row, not the similarity value.",
)


class MultiBitFeCAMCrossbar:
    """1-FeFET crossbar multi-bit CAM with current-domain Hamming sensing.

    Args:
        n_rows: Stored vectors.
        n_cols: Elements per vector.
        bits: Element precision.
        i_mismatch_ua: Mismatch current per cell (uA).
        t_eval_ns: Evaluation window (ns) during which the mismatch
            current flows -- the static-power cost of current-domain IMC.
        adc_energy_fj_per_bit: ADC energy per resolved bit per conversion.
    """

    design = MULTIBIT_FECAM_DESIGN

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        bits: int = 2,
        i_mismatch_ua: float = 1.0,
        t_eval_ns: float = 1.0,
        adc_energy_fj_per_bit: float = 50.0,
    ) -> None:
        if n_rows < 1 or n_cols < 1:
            raise ValueError("n_rows and n_cols must be >= 1")
        if not 1 <= bits <= 4:
            raise ValueError(f"bits must be in 1..4, got {bits}")
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.bits = bits
        self.i_mismatch_ua = i_mismatch_ua
        self.t_eval_ns = t_eval_ns
        self.adc_energy_fj_per_bit = adc_energy_fj_per_bit
        self._stored = np.full((n_rows, n_cols), -1, dtype=np.int64)

    def write(self, row: int, vector: Sequence[int]) -> None:
        """Store a multi-bit vector."""
        vec = np.asarray(vector, dtype=np.int64)
        if vec.shape != (self.n_cols,):
            raise ValueError(
                f"vector must have {self.n_cols} elements, got {vec.shape}"
            )
        if vec.min() < 0 or vec.max() >= 2**self.bits:
            raise ValueError(
                f"elements must be in [0, {2**self.bits - 1}]"
            )
        if not 0 <= row < self.n_rows:
            raise IndexError(f"row {row} out of range")
        self._stored[row] = vec

    def match_line_currents_ua(self, query: Sequence[int]) -> np.ndarray:
        """Per-row match-line current (uA): i_mismatch per mismatching cell."""
        query = np.asarray(query, dtype=np.int64)
        if query.shape != (self.n_cols,):
            raise ValueError(
                f"query must have {self.n_cols} elements, got {query.shape}"
            )
        if (self._stored < 0).any():
            raise RuntimeError("search before all rows were written")
        mismatches = (self._stored != query[None, :]).sum(axis=1)
        return mismatches * self.i_mismatch_ua

    def hamming_search(self, query: Sequence[int]) -> np.ndarray:
        """Quantitative per-row Hamming distance (ADC of the currents)."""
        currents = self.match_line_currents_ua(query)
        return np.round(currents / self.i_mismatch_ua).astype(np.int64)

    @property
    def adc_resolution_bits(self) -> int:
        """ADC bits needed to resolve one mismatch over the full range."""
        return max(1, math.ceil(math.log2(self.n_cols + 1)))

    def search_energy_j(self) -> float:
        """One full-array search: cell energy + static current + ADCs.

        This is where the paper's criticism lands: the match-line current
        flows for the whole evaluation window (static power), and every
        row needs an ADC conversion whose cost scales with resolution.
        """
        cell = self.design.search_energy_j(self.n_rows * self.n_cols * self.bits)
        # Worst-case static current: every cell mismatching.
        static = (
            self.n_rows
            * self.n_cols
            * self.i_mismatch_ua
            * 1e-6
            * 0.5  # average match-line voltage factor
            * self.t_eval_ns
            * 1e-9
        )
        adc = (
            self.n_rows
            * self.adc_resolution_bits
            * self.adc_energy_fj_per_bit
            * 1e-15
        )
        return cell + static + adc


class CosineCrossbarAM:
    """COSIME-like crossbar + winner-take-all cosine associative memory.

    Args:
        n_rows: Stored vectors.
        n_cols: Vector dimension.
        wta_energy_fj_per_row: Winner-take-all energy per competing row.
    """

    design = COSIME_DESIGN

    def __init__(
        self, n_rows: int, n_cols: int, wta_energy_fj_per_row: float = 40.0
    ) -> None:
        if n_rows < 1 or n_cols < 1:
            raise ValueError("n_rows and n_cols must be >= 1")
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.wta_energy_fj_per_row = wta_energy_fj_per_row
        self._stored = np.zeros((n_rows, n_cols))
        self._norms = np.ones(n_rows)
        self._written = np.zeros(n_rows, dtype=bool)

    def write(self, row: int, vector: Sequence[float]) -> None:
        """Store a real-valued vector (conductance-encoded)."""
        vec = np.asarray(vector, dtype=float)
        if vec.shape != (self.n_cols,):
            raise ValueError(
                f"vector must have {self.n_cols} elements, got {vec.shape}"
            )
        norm = float(np.linalg.norm(vec))
        if norm == 0:
            raise ValueError("cannot store a zero vector")
        if not 0 <= row < self.n_rows:
            raise IndexError(f"row {row} out of range")
        self._stored[row] = vec
        self._norms[row] = norm
        self._written[row] = True

    def winner(self, query: Sequence[float]) -> int:
        """Row with the largest cosine similarity -- and *only* the row.

        The design's translinear/WTA circuits output the argmax; the
        similarity value itself is not available (the paper's capability
        contrast for learning algorithms that need it).
        """
        query = np.asarray(query, dtype=float)
        if query.shape != (self.n_cols,):
            raise ValueError(
                f"query must have {self.n_cols} elements, got {query.shape}"
            )
        if not self._written.all():
            raise RuntimeError("search before all rows were written")
        qnorm = float(np.linalg.norm(query))
        if qnorm == 0:
            raise ValueError("zero query")
        scores = (self._stored @ query) / (self._norms * qnorm)
        return int(scores.argmax())

    def search_energy_j(self) -> float:
        """MAC array + WTA energy for one search."""
        mac = self.design.search_energy_j(self.n_rows * self.n_cols)
        wta = self.n_rows * self.wta_energy_fj_per_row * 1e-15
        return mac + wta
