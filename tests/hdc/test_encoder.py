"""Tests of the feature encoders."""

import numpy as np
import pytest

from repro.hdc.encoder import (
    QuantizedProjectionEncoder,
    RandomProjectionEncoder,
    RecordEncoder,
)


def record_reference_encode(enc, features):
    """The original per-feature reference loop of RecordEncoder."""
    x = np.atleast_2d(np.asarray(features, dtype=np.float32))
    level_idx = enc._level_index(x)
    out = np.zeros((x.shape[0], enc.dimension), dtype=np.float32)
    for f in range(enc.n_features):
        out += enc._ids[f] * enc._levels[level_idx[:, f]]
    return out


class TestRandomProjectionEncoder:
    def test_output_shape(self):
        enc = RandomProjectionEncoder(10, 64, seed=0)
        out = enc.encode(np.random.default_rng(0).normal(size=(5, 10)))
        assert out.shape == (5, 64)

    def test_single_sample_promoted(self):
        enc = RandomProjectionEncoder(10, 64, seed=0)
        assert enc.encode(np.zeros(10)).shape == (1, 64)

    def test_deterministic_given_seed(self):
        x = np.random.default_rng(1).normal(size=(3, 10))
        a = RandomProjectionEncoder(10, 64, seed=5).encode(x)
        b = RandomProjectionEncoder(10, 64, seed=5).encode(x)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        x = np.random.default_rng(1).normal(size=(3, 10))
        a = RandomProjectionEncoder(10, 64, seed=5).encode(x)
        b = RandomProjectionEncoder(10, 64, seed=6).encode(x)
        assert not np.allclose(a, b)

    def test_nonlinear_output_bounded(self):
        enc = RandomProjectionEncoder(10, 256, nonlinear=True, seed=0)
        out = enc.encode(np.random.default_rng(2).normal(size=(20, 10)))
        assert np.abs(out).max() <= 1.0

    def test_linear_mode_is_projection(self):
        enc = RandomProjectionEncoder(10, 64, nonlinear=False, seed=0)
        x = np.random.default_rng(3).normal(size=(2, 10)).astype(np.float32)
        expected = x @ enc._projection.T
        assert np.allclose(enc.encode(x), expected, atol=1e-5)

    def test_similar_inputs_similar_encodings(self):
        enc = RandomProjectionEncoder(20, 2048, seed=0)
        rng = np.random.default_rng(4)
        x = rng.normal(size=20)
        close = x + 0.01 * rng.normal(size=20)
        far = rng.normal(size=20)
        h = enc.encode(np.stack([x, close, far]))
        d_close = np.linalg.norm(h[0] - h[1])
        d_far = np.linalg.norm(h[0] - h[2])
        assert d_close < 0.3 * d_far

    def test_feature_count_validated(self):
        enc = RandomProjectionEncoder(10, 64, seed=0)
        with pytest.raises(ValueError, match="features"):
            enc.encode(np.zeros((1, 11)))


class TestRecordEncoder:
    def test_output_shape(self):
        enc = RecordEncoder(8, 512, seed=0)
        out = enc.encode(np.zeros((3, 8)))
        assert out.shape == (3, 512)

    def test_identical_inputs_identical_encodings(self):
        enc = RecordEncoder(8, 512, seed=0)
        x = np.random.default_rng(0).uniform(-1, 1, size=(1, 8))
        assert np.array_equal(enc.encode(x), enc.encode(x))

    def test_level_quantization_clips_range(self):
        enc = RecordEncoder(4, 256, feature_range=(-1, 1), seed=0)
        inside = enc.encode(np.full((1, 4), 0.8))
        outside = enc.encode(np.full((1, 4), 50.0))
        # Values beyond the range clip to the top level.
        top = enc.encode(np.full((1, 4), 1.0))
        assert np.array_equal(outside, top)
        assert not np.array_equal(inside, top)

    def test_similar_values_more_similar_encodings(self):
        enc = RecordEncoder(16, 4096, n_levels=32, seed=0)
        base = np.zeros((1, 16))
        near = np.full((1, 16), 0.05)
        far = np.full((1, 16), 0.9)
        h0 = enc.encode(base)[0]
        d_near = np.dot(h0, enc.encode(near)[0])
        d_far = np.dot(h0, enc.encode(far)[0])
        assert d_near > d_far

    def test_validation(self):
        with pytest.raises(ValueError, match="n_levels"):
            RecordEncoder(4, 64, n_levels=1)
        with pytest.raises(ValueError, match="feature_range"):
            RecordEncoder(4, 64, feature_range=(1.0, -1.0))

    @pytest.mark.parametrize(
        "n_features,dimension,n_levels",
        [(4, 64, 2), (8, 256, 16), (13, 100, 7)],
    )
    def test_mvm_path_bit_identical_to_reference_loop(
        self, n_features, dimension, n_levels
    ):
        enc = RecordEncoder(
            n_features, dimension, n_levels=n_levels, seed=3
        )
        rng = np.random.default_rng(9)
        x = rng.uniform(-1.5, 1.5, size=(11, n_features))
        out = enc.encode(x)
        ref = record_reference_encode(enc, x)
        assert out.dtype == np.float32
        assert np.array_equal(out, ref)


class TestNonlinearIdentity:
    def test_fast_path_matches_direct_formula(self):
        enc = RandomProjectionEncoder(17, 512, seed=2)
        x = (
            np.random.default_rng(5)
            .normal(size=(9, 17))
            .astype(np.float32)
        )
        out = enc.encode(x)
        p = x @ enc._projection.T
        direct = np.cos(p + enc._phase[None, :]) * np.sin(p)
        assert out.dtype == np.float32
        assert np.abs(out - direct).max() < 1e-5

    def test_varying_batch_sizes_agree(self):
        # The sin(b) tile is cached per batch width; alternating widths
        # must not leak state between calls.  (Exact equality only holds
        # per width -- BLAS may block differently per batch shape.)
        enc = RandomProjectionEncoder(10, 128, seed=0)
        rng = np.random.default_rng(6)
        x = rng.normal(size=(8, 10)).astype(np.float32)
        full = enc.encode(x)
        for n in (1, 3, 8, 2, 8):
            out = enc.encode(x[:n])
            np.testing.assert_allclose(out, full[:n], atol=1e-6)
        assert np.array_equal(enc.encode(x), full)


class TestQuantizedProjectionEncoder:
    def test_close_to_float_encoder(self):
        base = RandomProjectionEncoder(20, 512, seed=1)
        quant = base.quantize()
        x = np.random.default_rng(7).normal(size=(12, 20))
        err = np.abs(quant.encode(x) - base.encode(x)).max()
        assert err < 0.1  # 8b weights/acts: small but nonzero error

    def test_linear_mode(self):
        base = RandomProjectionEncoder(20, 64, nonlinear=False, seed=1)
        quant = base.quantize()
        x = np.random.default_rng(8).normal(size=(5, 20))
        assert not quant.nonlinear
        err = np.abs(quant.encode(x) - base.encode(x)).max()
        assert err < 0.05

    def test_more_bits_less_error(self):
        base = RandomProjectionEncoder(30, 256, seed=2)
        x = np.random.default_rng(9).normal(size=(10, 30))
        ref = base.encode(x)
        err3 = np.abs(base.quantize(3, 3).encode(x) - ref).max()
        err8 = np.abs(base.quantize(8, 8).encode(x) - ref).max()
        assert err8 < err3

    def test_bit_width_validation(self):
        base = RandomProjectionEncoder(10, 64, seed=0)
        with pytest.raises(ValueError, match="weight_bits"):
            QuantizedProjectionEncoder(base, weight_bits=1)
        with pytest.raises(ValueError, match="act_bits"):
            QuantizedProjectionEncoder(base, act_bits=9)

    def test_encode_cost_scales(self):
        quant = RandomProjectionEncoder(10, 64, seed=0).quantize()
        one = quant.encode_cost(1)
        five = quant.encode_cost(5)
        assert five.latency_s == pytest.approx(5 * one.latency_s)
        assert one.energy_j > 0

    def test_zero_feature_row_is_served(self):
        quant = RandomProjectionEncoder(6, 32, seed=0).quantize()
        out = quant.encode(np.zeros((2, 6)))
        assert out.shape == (2, 32)
        assert np.isfinite(out).all()
