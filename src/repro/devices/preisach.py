"""Multi-domain Preisach hysteresis model of the ferroelectric layer.

The multi-domain FeFET compact model of Ni et al. (VLSI'18) describes the
ferroelectric layer as an ensemble of independently switching domains, each
an elementary rectangular hysteresis operator ("hysteron").  A hysteron
switches *up* (+P_r) when the applied field exceeds its up-coercive voltage
``alpha`` and *down* (-P_r) when the field drops below its down-coercive
voltage ``beta`` (``beta < alpha``).  Distributing ``(alpha, beta)`` over
the ensemble yields smooth major/minor loops and, crucially for this paper,
*partial polarization*: a write pulse of intermediate amplitude flips only
a fraction of the domains, producing the intermediate threshold-voltage
states that give the 2-FeFET cell its multi-bit storage.

This module is a faithful behavioral implementation of that picture:

- :class:`Hysteron` -- one rectangular switching element.
- :class:`PreisachModel` -- an ensemble with Gaussian-distributed coercive
  voltages; applying a voltage history updates the domain states, and the
  normalized polarization in [-1, +1] is the ensemble mean.

The FeFET model (:mod:`repro.devices.fefet`) maps polarization linearly to
a threshold-voltage shift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np


@dataclass
class Hysteron:
    """A single rectangular hysteresis operator (one FE domain).

    Attributes:
        alpha: Up-switching voltage (V); the domain polarizes up when the
            applied voltage reaches or exceeds it.
        beta: Down-switching voltage (V); the domain polarizes down when the
            applied voltage reaches or falls below it.  Must satisfy
            ``beta < alpha``.
        state: Current polarization, +1 or -1.
    """

    alpha: float
    beta: float
    state: int = -1

    def __post_init__(self) -> None:
        if self.beta >= self.alpha:
            raise ValueError(
                f"hysteron requires beta < alpha, got beta={self.beta}, alpha={self.alpha}"
            )
        if self.state not in (-1, 1):
            raise ValueError(f"hysteron state must be -1 or +1, got {self.state}")

    def apply(self, voltage: float) -> int:
        """Apply a quasi-static voltage and return the resulting state."""
        if voltage >= self.alpha:
            self.state = 1
        elif voltage <= self.beta:
            self.state = -1
        return self.state


class PreisachModel:
    """An ensemble of hysterons with Gaussian coercive-voltage spread.

    The ensemble is vectorized: domain up/down coercive voltages are numpy
    arrays and a voltage step updates all domains at once.  The coercive
    voltages are drawn as ``Vc ~ N(coercive_mean, coercive_sigma)`` with an
    optional up/down asymmetry ``bias`` so that ``alpha = Vc + bias`` and
    ``beta = -Vc + bias``.

    Args:
        n_domains: Number of domains in the ensemble.  The paper's model
            uses a grain-level ensemble; 200 domains are enough for smooth
            sub-1% polarization granularity.
        coercive_mean: Mean coercive voltage (V).  Typical HfO2 FeFET write
            voltages are +-3..4 V, so the default mean of 3.0 V places full
            program/erase at roughly +-4 V.
        coercive_sigma: Standard deviation of the coercive voltage (V).
        bias: Up/down asymmetry added to both switching voltages (V).
        rng: Seeded generator for reproducible ensembles; a fresh default
            generator is used when omitted.
    """

    def __init__(
        self,
        n_domains: int = 200,
        coercive_mean: float = 3.0,
        coercive_sigma: float = 0.45,
        bias: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_domains < 1:
            raise ValueError(f"n_domains must be >= 1, got {n_domains}")
        if coercive_sigma < 0:
            raise ValueError(f"coercive_sigma must be >= 0, got {coercive_sigma}")
        self.n_domains = n_domains
        self.coercive_mean = coercive_mean
        self.coercive_sigma = coercive_sigma
        self.bias = bias
        rng = rng if rng is not None else np.random.default_rng()
        coercive = rng.normal(coercive_mean, coercive_sigma, size=n_domains)
        # Guard against non-physical (negative) coercive voltages from the
        # Gaussian tail; clip to a small positive floor.
        coercive = np.clip(coercive, 0.05, None)
        self._alpha = np.sort(coercive) + bias
        self._beta = -np.sort(coercive)[::-1] + bias
        self._states = np.full(n_domains, -1, dtype=np.int8)

    # ------------------------------------------------------------------
    # State manipulation
    # ------------------------------------------------------------------
    def reset(self, polarization: float = -1.0) -> None:
        """Force the ensemble to a uniform polarization of +-1.

        Args:
            polarization: Either -1.0 (all domains down, the erased state)
                or +1.0 (all domains up).
        """
        if polarization not in (-1.0, 1.0):
            raise ValueError(
                f"reset polarization must be -1.0 or +1.0, got {polarization}"
            )
        self._states[:] = int(polarization)

    def apply_voltage(self, voltage: float) -> float:
        """Apply one quasi-static voltage level and return polarization."""
        self._states[voltage >= self._alpha] = 1
        self._states[voltage <= self._beta] = -1
        return self.polarization

    def apply_history(self, voltages: Iterable[float]) -> float:
        """Apply a sequence of quasi-static voltage levels in order."""
        for voltage in voltages:
            self.apply_voltage(voltage)
        return self.polarization

    @property
    def polarization(self) -> float:
        """Normalized polarization, the ensemble-mean state in [-1, +1]."""
        return float(self._states.mean())

    @property
    def states(self) -> np.ndarray:
        """Copy of the per-domain states (+1/-1)."""
        return self._states.copy()

    # ------------------------------------------------------------------
    # Program-voltage calibration
    # ------------------------------------------------------------------
    def voltage_for_up_fraction(self, fraction: float) -> float:
        """Voltage that, applied after a full erase, switches ``fraction``
        of the domains up.

        This is the quantile of the up-coercive-voltage spectrum and is the
        key primitive of the multi-level write scheme: program pulses of
        this amplitude land the ensemble at a target partial polarization.

        Args:
            fraction: Target fraction of up-domains in [0, 1].

        Returns:
            The required program voltage (V).  ``fraction=0`` returns a
            voltage below every ``alpha``; ``fraction=1`` a voltage above
            every ``alpha``.
        """
        if not -1e-9 <= fraction <= 1.0 + 1e-9:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        margin = 1e-3
        # Round to the nearest whole domain; float noise in the caller's
        # polarization arithmetic must not flip a domain.
        k = int(round(fraction * self.n_domains))
        k = min(max(k, 0), self.n_domains)
        if k == 0:
            return float(self._alpha[0]) - margin
        if k == self.n_domains:
            return float(self._alpha[-1]) + margin
        # _alpha is sorted ascending; switching exactly the first k domains
        # requires a voltage between alpha[k-1] and alpha[k].  The midpoint
        # is robust to nearly degenerate neighbors.
        return float(0.5 * (self._alpha[k - 1] + self._alpha[k]))

    def major_loop(
        self, v_min: float = -5.0, v_max: float = 5.0, n_points: int = 201
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Trace the major hysteresis loop.

        Sweeps the voltage down to ``v_min``, up to ``v_max`` and back,
        recording the polarization of the up-then-down branch.

        Returns:
            ``(voltages, polarizations)`` arrays of length ``2 * n_points``
            covering the up sweep followed by the down sweep.
        """
        if n_points < 2:
            raise ValueError(f"n_points must be >= 2, got {n_points}")
        saved = self._states.copy()
        try:
            up = np.linspace(v_min, v_max, n_points)
            down = np.linspace(v_max, v_min, n_points)
            self.reset(-1.0)
            pol_up = np.array([self.apply_voltage(v) for v in up])
            pol_down = np.array([self.apply_voltage(v) for v in down])
            return np.concatenate([up, down]), np.concatenate([pol_up, pol_down])
        finally:
            self._states = saved

    def __repr__(self) -> str:
        return (
            f"PreisachModel(n_domains={self.n_domains}, "
            f"coercive_mean={self.coercive_mean}, "
            f"coercive_sigma={self.coercive_sigma}, "
            f"polarization={self.polarization:+.3f})"
        )


def make_ensemble(
    count: int,
    n_domains: int = 200,
    coercive_mean: float = 3.0,
    coercive_sigma: float = 0.45,
    seed: Optional[int] = None,
) -> Sequence[PreisachModel]:
    """Create ``count`` independent Preisach models from one seed.

    Used by the device-to-device ensembles in :mod:`repro.devices.variation`.
    """
    rng = np.random.default_rng(seed)
    return [
        PreisachModel(
            n_domains=n_domains,
            coercive_mean=coercive_mean,
            coercive_sigma=coercive_sigma,
            rng=rng,
        )
        for _ in range(count)
    ]
