"""Write-pulse schemes for programming multi-level FeFET states.

The paper adopts the write method of Reis et al. [36] to program the four
threshold states.  Behaviorally the scheme is:

1. a full negative **erase** pulse resets every domain (V_TH -> highest),
2. a positive **program** pulse of state-dependent amplitude partially
   polarizes the ferroelectric, landing V_TH on the target level.

:class:`WriteScheme` calibrates the program amplitudes once against a
reference device (quantiles of the Preisach coercive spectrum) and then
programs any device of the same nominal parameters, optionally with a
write-verify loop that retries with a nudged amplitude -- the standard
mitigation for device-to-device coercive spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.devices.fefet import FeFET, FeFETParams


@dataclass(frozen=True)
class WritePulse:
    """One gate pulse of the write waveform.

    Attributes:
        amplitude: Gate voltage (V); negative for erase.
        width_ns: Pulse width in nanoseconds (documentation of the
            waveform; the quasi-static Preisach model switches on amplitude
            alone, as in the paper's compact model at DC-write conditions).
    """

    amplitude: float
    width_ns: float = 100.0

    def __post_init__(self) -> None:
        if self.width_ns <= 0:
            raise ValueError(f"pulse width must be positive, got {self.width_ns}")


class WriteScheme:
    """Erase-then-program multi-level write scheme with verify.

    Args:
        state_vths: Target threshold ladder, lowest first (e.g. the paper's
            0.2/0.6/1.0/1.4 V).
        params: Nominal FeFET parameters shared by the array.
        seed: Seed of the reference device used for calibration.
        verify_tolerance: Accepted |V_TH error| (V) in the verify loop.
        max_verify_iterations: Retries before giving up.
    """

    def __init__(
        self,
        state_vths: Sequence[float],
        params: FeFETParams = FeFETParams(),
        seed: Optional[int] = 7,
        verify_tolerance: float = 0.02,
        max_verify_iterations: int = 12,
    ) -> None:
        ladder = [float(v) for v in state_vths]
        if sorted(ladder) != ladder:
            raise ValueError(f"state_vths must be ascending, got {state_vths}")
        if not ladder:
            raise ValueError("state_vths must not be empty")
        lo, hi = params.vth_low, params.vth_high
        for v in ladder:
            if not lo - 1e-9 <= v <= hi + 1e-9:
                raise ValueError(
                    f"state V_TH {v} V outside programmable window [{lo}, {hi}] V"
                )
        self.state_vths = ladder
        self.params = params
        self.verify_tolerance = verify_tolerance
        self.max_verify_iterations = max_verify_iterations
        self._reference = FeFET(params, rng=np.random.default_rng(seed))
        self._amplitudes = self._calibrate()

    def _calibrate(self) -> List[float]:
        """Find the program amplitude for each state on the reference."""
        amplitudes = []
        for target in self.state_vths:
            pol = -(target - self.params.vth_center) * 2.0 / self.params.vth_range
            fraction = (pol + 1.0) / 2.0
            amplitudes.append(
                self._reference._preisach.voltage_for_up_fraction(fraction)
            )
        return amplitudes

    def pulses_for_state(self, state: int) -> List[WritePulse]:
        """The erase+program pulse train that writes ``state``."""
        self._check_state(state)
        return [
            WritePulse(amplitude=self.params.erase_voltage),
            WritePulse(amplitude=self._amplitudes[state]),
        ]

    def write(self, device: FeFET, state: int, verify: bool = True) -> float:
        """Program ``device`` to ``state``; returns the achieved V_TH.

        With ``verify=True`` the achieved threshold is measured after each
        attempt and the program amplitude is nudged proportionally to the
        residual error, up to ``max_verify_iterations`` attempts.

        Raises:
            RuntimeError: if verify cannot reach the target tolerance.
        """
        self._check_state(state)
        target = self.state_vths[state]
        amplitude = self._amplitudes[state]
        device.erase()
        device.apply_gate_pulse(amplitude)
        if not verify:
            return device.vth
        # The achieved V_TH includes the device's fixed offset, which no
        # amount of re-writing removes; verify against the polarization-only
        # part so the loop converges for offset devices too.  The device's
        # domain spectrum is discrete and lumpy, so a fixed proportional
        # gain can limit-cycle between two domain counts; the gain halves
        # whenever the error changes sign (secant-style damping) and the
        # best amplitude seen is kept.
        gain = 1.5
        previous_error = None
        best_error = float("inf")
        best_amplitude = amplitude
        for _ in range(self.max_verify_iterations):
            achieved = device.vth - device.vth_offset
            error = achieved - target
            if abs(error) < best_error:
                best_error = abs(error)
                best_amplitude = amplitude
            if abs(error) <= self.verify_tolerance:
                return device.vth
            if previous_error is not None and error * previous_error < 0:
                gain *= 0.5
            previous_error = error
            # Higher amplitude -> more up-domains -> lower V_TH, so nudge
            # the amplitude in the direction of the error.
            amplitude += error * gain
            device.erase()
            device.apply_gate_pulse(amplitude)
        achieved = device.vth - device.vth_offset
        if abs(achieved - target) <= self.verify_tolerance:
            return device.vth
        # Fall back to the best amplitude observed during the search.
        device.erase()
        device.apply_gate_pulse(best_amplitude)
        achieved = device.vth - device.vth_offset
        if abs(achieved - target) <= self.verify_tolerance:
            return device.vth
        raise RuntimeError(
            f"write-verify failed for state {state}: achieved "
            f"{achieved:.4f} V vs target {target:.4f} V after "
            f"{self.max_verify_iterations} attempts"
        )

    def program_amplitudes(self) -> Dict[int, float]:
        """Calibrated program amplitude per state (V)."""
        return dict(enumerate(self._amplitudes))

    def _check_state(self, state: int) -> None:
        if not 0 <= state < len(self.state_vths):
            raise ValueError(
                f"state {state} out of range [0, {len(self.state_vths) - 1}]"
            )
