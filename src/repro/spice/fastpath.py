"""Vectorized evaluation path for the transient solver.

The generic solver loops Python objects per element per Newton iteration,
which caps practical circuit sizes around a few dozen stages.  This
module groups the netlist by element type into numpy arrays:

- linear two-terminal groups (resistors, capacitors) become constant
  stamps assembled once,
- all transistors (MOSFET elements and FeFET channel snapshots share the
  same square-law model) are evaluated in one vectorized call, with
  vectorized finite-difference partials for the Jacobian,

giving order-of-magnitude speedups that make paper-scale transients
(32-stage chains, transient Monte Carlo) practical.  The result is
numerically identical to the scalar path up to float noise --
``tests/spice/test_fastpath.py`` asserts the equivalence on full chains.

Circuits containing element types unknown to this module fall back to
the scalar path automatically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    FeFETElement,
    MOSFETElement,
    Resistor,
    VoltageSource,
)

#: Same GMIN as the scalar MOSFET model.
_GMIN = 1e-12
#: Finite-difference step for transistor partials (V).
_DELTA = 1e-6


def mosfet_ids_vectorized(
    vgs: np.ndarray,
    vds: np.ndarray,
    vth: np.ndarray,
    kp_w: np.ndarray,
    lam: np.ndarray,
    n_slope: np.ndarray,
    i0: np.ndarray,
    thermal: float,
) -> np.ndarray:
    """Vectorized drain current of NMOS-polarity devices.

    Mirrors :meth:`repro.devices.mosfet.MOSFET._ids_nmos` exactly,
    including the source/drain swap for negative V_DS and the
    subthreshold blend (PMOS mirroring happens in the caller).
    """
    vgs = np.asarray(vgs, dtype=float)
    vds = np.asarray(vds, dtype=float)
    # Source/drain swap for vds < 0: I(vgs, vds) = -I(vgs - vds, -vds).
    swap = vds < 0
    vgs_eff = np.where(swap, vgs - vds, vgs)
    vds_eff = np.abs(vds)
    vov = vgs_eff - vth

    # Subthreshold branch.
    vds_sat_term = 1.0 - np.exp(-vds_eff / thermal)
    isub = (
        i0 * np.exp(np.minimum(vov, 0.0) / (n_slope * thermal)) * vds_sat_term
    )
    # Square-law branches.
    triode = kp_w * (vov - 0.5 * vds_eff) * vds_eff
    saturation = 0.5 * kp_w * vov**2 * (1.0 + lam * (vds_eff - vov))
    strong = np.where(vds_eff < vov, triode, saturation) + i0 * vds_sat_term

    current = np.where(vov <= 0.0, isub, strong) + _GMIN * vds_eff
    return np.where(swap, -current, current)


class VectorizedSystem:
    """Grouped, array-based residual/Jacobian assembly for one circuit.

    Args:
        bound: ``(element, node_indices)`` pairs from the solver's
            binding pass (-1 denotes ground).
        free_pos: Map of global node index -> Newton-vector position.
        n_free: Number of free nodes.

    Raises:
        TypeError: if the netlist contains an element type this fast
            path does not understand (caller falls back to scalar).
    """

    def __init__(
        self,
        bound: Sequence[Tuple[object, List[int]]],
        free_pos: Dict[int, int],
        n_free: int,
    ) -> None:
        self.n_free = n_free
        self._free_pos = free_pos

        res_a, res_b, res_g = [], [], []
        cap_a, cap_b, cap_c = [], [], []
        fet_d, fet_g, fet_s = [], [], []
        fet_vth, fet_kpw, fet_lam = [], [], []
        fet_nslope, fet_i0, fet_pmos = [], [], []
        thermal = 0.02585
        self._isrc: List[Tuple[int, int, object]] = []
        for element, idx in bound:
            if isinstance(element, VoltageSource):
                continue
            if isinstance(element, CurrentSource):
                self._isrc.append((idx[0], idx[1], element.waveform))
                continue
            if isinstance(element, Resistor):
                res_a.append(idx[0])
                res_b.append(idx[1])
                res_g.append(1.0 / element.resistance)
            elif isinstance(element, Capacitor):
                cap_a.append(idx[0])
                cap_b.append(idx[1])
                cap_c.append(element.capacitance)
            elif isinstance(element, (MOSFETElement, FeFETElement)):
                model = (
                    element.model
                    if isinstance(element, MOSFETElement)
                    else element._channel
                )
                params = model.params
                fet_d.append(idx[0])
                fet_g.append(idx[1])
                fet_s.append(idx[2])
                fet_pmos.append(params.is_pmos)
                vth = -params.vth if params.is_pmos else params.vth
                fet_vth.append(vth)
                fet_kpw.append(params.kp * params.width)
                fet_lam.append(params.lam)
                n = model._n_slope
                fet_nslope.append(n)
                i0_coeff = n - 1.0 if n > 1.0 else 0.5
                fet_i0.append(
                    params.kp * params.width * i0_coeff * thermal * thermal
                )
                thermal = model._thermal
            else:
                raise TypeError(
                    f"fast path does not support {type(element).__name__}"
                )

        self._thermal = thermal
        self._res = (
            np.array(res_a, dtype=int),
            np.array(res_b, dtype=int),
            np.array(res_g, dtype=float),
        )
        self._cap = (
            np.array(cap_a, dtype=int),
            np.array(cap_b, dtype=int),
            np.array(cap_c, dtype=float),
        )
        self._fet = (
            np.array(fet_d, dtype=int),
            np.array(fet_g, dtype=int),
            np.array(fet_s, dtype=int),
        )
        self._fet_params = (
            np.array(fet_vth, dtype=float),
            np.array(fet_kpw, dtype=float),
            np.array(fet_lam, dtype=float),
            np.array(fet_nslope, dtype=float),
            np.array(fet_i0, dtype=float),
            np.array(fet_pmos, dtype=bool),
        )
        # Precompute scatter positions (-1 rows are dropped at scatter).
        self._pos_lookup = np.full(
            1 + max((gi for gi in free_pos), default=0) + 1, -1, dtype=int
        )
        for gi, pos in free_pos.items():
            self._pos_lookup[gi] = pos
        # Constant linear stamp of resistors into the Jacobian.
        self._linear_jacobian = self._build_linear_jacobian()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _pos(self, indices: np.ndarray) -> np.ndarray:
        """Newton positions of global node indices (-1 if not free)."""
        out = np.full(indices.shape, -1, dtype=int)
        mask = indices >= 0
        valid = indices[mask]
        in_range = valid < len(self._pos_lookup)
        res = np.full(valid.shape, -1, dtype=int)
        res[in_range] = self._pos_lookup[valid[in_range]]
        out[mask] = res
        return out

    def _scatter_add(self, vec: np.ndarray, pos: np.ndarray,
                     values: np.ndarray) -> None:
        mask = pos >= 0
        np.add.at(vec, pos[mask], values[mask])

    def _build_linear_jacobian(self) -> np.ndarray:
        jac = np.zeros((self.n_free, self.n_free))
        a, b, g = self._res
        if len(g):
            pa, pb = self._pos(a), self._pos(b)
            for pi, pj, sign in (
                (pa, pa, 1.0), (pb, pb, 1.0), (pa, pb, -1.0), (pb, pa, -1.0),
            ):
                mask = (pi >= 0) & (pj >= 0)
                np.add.at(jac, (pi[mask], pj[mask]), sign * g[mask])
        return jac

    def _node_voltages(self, volts: np.ndarray,
                       indices: np.ndarray) -> np.ndarray:
        out = np.zeros(indices.shape, dtype=float)
        mask = indices >= 0
        out[mask] = volts[indices[mask]]
        return out

    def _fet_currents(self, volts: np.ndarray,
                      vg_shift: float = 0.0,
                      vd_shift: float = 0.0,
                      vs_shift: float = 0.0) -> np.ndarray:
        d, g, s = self._fet
        vth, kpw, lam, nslope, i0, pmos = self._fet_params
        vd = self._node_voltages(volts, d) + vd_shift
        vg = self._node_voltages(volts, g) + vg_shift
        vs = self._node_voltages(volts, s) + vs_shift
        vgs = vg - vs
        vds = vd - vs
        # PMOS as mirrored NMOS: ids = -ids_n(-vgs, -vds, |vth|).
        sign = np.where(pmos, -1.0, 1.0)
        ids_n = mosfet_ids_vectorized(
            sign * vgs, sign * vds, vth, kpw, lam, nslope, i0, self._thermal
        )
        return sign * ids_n

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def residual(self, volts: np.ndarray, v_prev: np.ndarray,
                 dt: float, t: float = 0.0) -> np.ndarray:
        res = np.zeros(self.n_free)
        # Independent current sources.
        for a, b, waveform in self._isrc:
            i = waveform.value_at(t)
            for gi, sign in ((a, 1.0), (b, -1.0)):
                if gi >= 0:
                    pos = self._pos(np.array([gi]))[0]
                    if pos >= 0:
                        res[pos] += sign * i
        # Resistors.
        a, b, g = self._res
        if len(g):
            i = (self._node_voltages(volts, a)
                 - self._node_voltages(volts, b)) * g
            self._scatter_add(res, self._pos(a), i)
            self._scatter_add(res, self._pos(b), -i)
        # Capacitors (backward Euler).
        a, b, c = self._cap
        if len(c):
            dv_now = self._node_voltages(volts, a) - self._node_voltages(volts, b)
            dv_prev = (
                self._node_voltages(v_prev, a)
                - self._node_voltages(v_prev, b)
            )
            i = c * (dv_now - dv_prev) / dt
            self._scatter_add(res, self._pos(a), i)
            self._scatter_add(res, self._pos(b), -i)
        # Transistors.
        d, g_node, s = self._fet
        if len(d):
            ids = self._fet_currents(volts)
            self._scatter_add(res, self._pos(d), ids)
            self._scatter_add(res, self._pos(s), -ids)
        return res

    def jacobian(self, volts: np.ndarray, dt: float) -> np.ndarray:
        jac = self._linear_jacobian.copy()
        # Capacitor companion conductance C/dt.
        a, b, c = self._cap
        if len(c):
            g = c / dt
            pa, pb = self._pos(a), self._pos(b)
            for pi, pj, sign in (
                (pa, pa, 1.0), (pb, pb, 1.0), (pa, pb, -1.0), (pb, pa, -1.0),
            ):
                mask = (pi >= 0) & (pj >= 0)
                np.add.at(jac, (pi[mask], pj[mask]), sign * g[mask])
        # Transistors: finite-difference partials wrt vd, vg, vs.
        d, g_node, s = self._fet
        if len(d):
            base = self._fet_currents(volts)
            di_dvd = (self._fet_currents(volts, vd_shift=_DELTA) - base) / _DELTA
            di_dvg = (self._fet_currents(volts, vg_shift=_DELTA) - base) / _DELTA
            di_dvs = (self._fet_currents(volts, vs_shift=_DELTA) - base) / _DELTA
            pd, pg, ps = self._pos(d), self._pos(g_node), self._pos(s)
            contributions = (
                (pd, pd, di_dvd), (pd, pg, di_dvg), (pd, ps, di_dvs),
                (ps, pd, -di_dvd), (ps, pg, -di_dvg), (ps, ps, -di_dvs),
            )
            for pi, pj, values in contributions:
                mask = (pi >= 0) & (pj >= 0)
                np.add.at(jac, (pi[mask], pj[mask]), values[mask])
        return jac


def try_build(
    bound: Sequence[Tuple[object, List[int]]],
    free_pos: Dict[int, int],
    n_free: int,
) -> Optional[VectorizedSystem]:
    """A :class:`VectorizedSystem`, or None if an element is unsupported."""
    try:
        return VectorizedSystem(bound, free_pos, n_free)
    except TypeError:
        return None
