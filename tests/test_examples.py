"""Smoke tests: every example script runs end to end.

The examples are a deliverable (the runnable face of the public API), so
each one executes as a subprocess from the repository root; a non-zero
exit or an uncaught exception fails the suite.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_directory_populated():
    assert len(EXAMPLES) >= 3, "the deliverable requires >= 3 examples"


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"
