"""Extension bench: retention & endurance of the deployed array.

Beyond the paper's write-time Monte Carlo: how search fidelity ages, how
the aging-aware search-line re-bias extends it, and the endurance budget
of the 2-bit ladder.
"""

from benchmarks.conftest import run_once
from repro.experiments.ext_retention import (
    format_endurance,
    format_retention,
    run_endurance_study,
    run_retention_study,
)


def test_ext_retention(benchmark):
    result = run_once(benchmark, run_retention_study, n_rows=12, n_queries=16)
    print()
    print(format_retention(result))

    fresh, oldest = result.records[0], result.records[-1]
    assert fresh.distance_rmse == 0.0 and fresh.exact_fraction == 1.0
    # The fixed ladder degrades badly at 10 years...
    assert oldest.distance_rmse > 1.0
    # ... and the compensated ladder avoids the catastrophic loss.
    assert oldest.distance_rmse_compensated < 0.5 * oldest.distance_rmse
    # Margins shrink monotonically but stay positive over the study.
    margins = [r.match_margin_v for r in result.records]
    assert margins == sorted(margins, reverse=True)
    assert margins[-1] > 0


def test_ext_endurance(benchmark):
    records = run_once(benchmark, run_endurance_study)
    print()
    print(format_endurance(records))

    assert records[0].ladder_fits
    # The full 1.2 V ladder stops fitting somewhere in the fatigue regime.
    assert not records[-1].ladder_fits
    # Write noise grows monotonically past the onset.
    noises = [r.write_noise_mv for r in records]
    assert noises == sorted(noises)
